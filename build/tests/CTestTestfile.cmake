# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_spice_dc[1]_include.cmake")
include("/root/repo/build/tests/test_spice_transient[1]_include.cmake")
include("/root/repo/build/tests/test_spice_ac[1]_include.cmake")
include("/root/repo/build/tests/test_waveform[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_mosfet[1]_include.cmake")
include("/root/repo/build/tests/test_preisach[1]_include.cmake")
include("/root/repo/build/tests/test_fefet[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_cim_cell[1]_include.cmake")
include("/root/repo/build/tests/test_cim_array[1]_include.cmake")
include("/root/repo/build/tests/test_montecarlo[1]_include.cmake")
include("/root/repo/build/tests/test_behavioral[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_nn_layers[1]_include.cmake")
include("/root/repo/build/tests/test_nn_training[1]_include.cmake")
include("/root/repo/build/tests/test_quantize[1]_include.cmake")
include("/root/repo/build/tests/test_reference_designs[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_reliability[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_tile[1]_include.cmake")
include("/root/repo/build/tests/test_spice_properties[1]_include.cmake")
