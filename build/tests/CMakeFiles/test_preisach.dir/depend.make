# Empty dependencies file for test_preisach.
# This may be replaced when dependencies are built.
