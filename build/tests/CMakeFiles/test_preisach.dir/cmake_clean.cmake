file(REMOVE_RECURSE
  "CMakeFiles/test_preisach.dir/test_preisach.cpp.o"
  "CMakeFiles/test_preisach.dir/test_preisach.cpp.o.d"
  "test_preisach"
  "test_preisach.pdb"
  "test_preisach[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preisach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
