file(REMOVE_RECURSE
  "CMakeFiles/test_fefet.dir/test_fefet.cpp.o"
  "CMakeFiles/test_fefet.dir/test_fefet.cpp.o.d"
  "test_fefet"
  "test_fefet.pdb"
  "test_fefet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fefet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
