# Empty compiler generated dependencies file for test_fefet.
# This may be replaced when dependencies are built.
