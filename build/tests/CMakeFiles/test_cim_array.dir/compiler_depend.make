# Empty compiler generated dependencies file for test_cim_array.
# This may be replaced when dependencies are built.
