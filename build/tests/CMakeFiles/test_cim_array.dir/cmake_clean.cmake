file(REMOVE_RECURSE
  "CMakeFiles/test_cim_array.dir/test_cim_array.cpp.o"
  "CMakeFiles/test_cim_array.dir/test_cim_array.cpp.o.d"
  "test_cim_array"
  "test_cim_array.pdb"
  "test_cim_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cim_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
