file(REMOVE_RECURSE
  "CMakeFiles/test_reference_designs.dir/test_reference_designs.cpp.o"
  "CMakeFiles/test_reference_designs.dir/test_reference_designs.cpp.o.d"
  "test_reference_designs"
  "test_reference_designs.pdb"
  "test_reference_designs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reference_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
