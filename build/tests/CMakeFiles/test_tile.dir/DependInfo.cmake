
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tile.cpp" "tests/CMakeFiles/test_tile.dir/test_tile.cpp.o" "gcc" "tests/CMakeFiles/test_tile.dir/test_tile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/sfc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/cim/CMakeFiles/sfc_cim.dir/DependInfo.cmake"
  "/root/repo/build/src/fefet/CMakeFiles/sfc_fefet.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/sfc_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/sfc_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sfc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sfc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
