file(REMOVE_RECURSE
  "CMakeFiles/test_behavioral.dir/test_behavioral.cpp.o"
  "CMakeFiles/test_behavioral.dir/test_behavioral.cpp.o.d"
  "test_behavioral"
  "test_behavioral.pdb"
  "test_behavioral[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_behavioral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
