# Empty dependencies file for test_behavioral.
# This may be replaced when dependencies are built.
