# Empty dependencies file for test_cim_cell.
# This may be replaced when dependencies are built.
