file(REMOVE_RECURSE
  "CMakeFiles/test_cim_cell.dir/test_cim_cell.cpp.o"
  "CMakeFiles/test_cim_cell.dir/test_cim_cell.cpp.o.d"
  "test_cim_cell"
  "test_cim_cell.pdb"
  "test_cim_cell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cim_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
