# Empty compiler generated dependencies file for test_spice_dc.
# This may be replaced when dependencies are built.
