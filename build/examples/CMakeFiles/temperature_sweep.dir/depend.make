# Empty dependencies file for temperature_sweep.
# This may be replaced when dependencies are built.
