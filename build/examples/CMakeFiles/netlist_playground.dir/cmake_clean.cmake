file(REMOVE_RECURSE
  "CMakeFiles/netlist_playground.dir/netlist_playground.cpp.o"
  "CMakeFiles/netlist_playground.dir/netlist_playground.cpp.o.d"
  "netlist_playground"
  "netlist_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
