file(REMOVE_RECURSE
  "CMakeFiles/hysteresis_loop.dir/hysteresis_loop.cpp.o"
  "CMakeFiles/hysteresis_loop.dir/hysteresis_loop.cpp.o.d"
  "hysteresis_loop"
  "hysteresis_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hysteresis_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
