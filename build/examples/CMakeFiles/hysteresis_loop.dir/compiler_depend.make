# Empty compiler generated dependencies file for hysteresis_loop.
# This may be replaced when dependencies are built.
