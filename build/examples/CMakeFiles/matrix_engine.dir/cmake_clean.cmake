file(REMOVE_RECURSE
  "CMakeFiles/matrix_engine.dir/matrix_engine.cpp.o"
  "CMakeFiles/matrix_engine.dir/matrix_engine.cpp.o.d"
  "matrix_engine"
  "matrix_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
