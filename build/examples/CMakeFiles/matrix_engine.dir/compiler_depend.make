# Empty compiler generated dependencies file for matrix_engine.
# This may be replaced when dependencies are built.
