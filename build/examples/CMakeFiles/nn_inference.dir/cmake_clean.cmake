file(REMOVE_RECURSE
  "CMakeFiles/nn_inference.dir/nn_inference.cpp.o"
  "CMakeFiles/nn_inference.dir/nn_inference.cpp.o.d"
  "nn_inference"
  "nn_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
