file(REMOVE_RECURSE
  "CMakeFiles/fig3_1fefet1r_temperature.dir/fig3_1fefet1r_temperature.cpp.o"
  "CMakeFiles/fig3_1fefet1r_temperature.dir/fig3_1fefet1r_temperature.cpp.o.d"
  "fig3_1fefet1r_temperature"
  "fig3_1fefet1r_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_1fefet1r_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
