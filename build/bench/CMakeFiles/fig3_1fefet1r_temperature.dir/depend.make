# Empty dependencies file for fig3_1fefet1r_temperature.
# This may be replaced when dependencies are built.
