# Empty dependencies file for ablation_reliability.
# This may be replaced when dependencies are built.
