file(REMOVE_RECURSE
  "CMakeFiles/ablation_reliability.dir/ablation_reliability.cpp.o"
  "CMakeFiles/ablation_reliability.dir/ablation_reliability.cpp.o.d"
  "ablation_reliability"
  "ablation_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
