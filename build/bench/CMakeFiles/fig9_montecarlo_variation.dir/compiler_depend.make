# Empty compiler generated dependencies file for fig9_montecarlo_variation.
# This may be replaced when dependencies are built.
