file(REMOVE_RECURSE
  "CMakeFiles/fig9_montecarlo_variation.dir/fig9_montecarlo_variation.cpp.o"
  "CMakeFiles/fig9_montecarlo_variation.dir/fig9_montecarlo_variation.cpp.o.d"
  "fig9_montecarlo_variation"
  "fig9_montecarlo_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_montecarlo_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
