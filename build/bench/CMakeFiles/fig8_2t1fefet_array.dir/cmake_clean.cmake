file(REMOVE_RECURSE
  "CMakeFiles/fig8_2t1fefet_array.dir/fig8_2t1fefet_array.cpp.o"
  "CMakeFiles/fig8_2t1fefet_array.dir/fig8_2t1fefet_array.cpp.o.d"
  "fig8_2t1fefet_array"
  "fig8_2t1fefet_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_2t1fefet_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
