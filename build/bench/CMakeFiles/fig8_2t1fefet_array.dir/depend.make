# Empty dependencies file for fig8_2t1fefet_array.
# This may be replaced when dependencies are built.
