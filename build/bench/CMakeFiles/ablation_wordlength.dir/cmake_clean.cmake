file(REMOVE_RECURSE
  "CMakeFiles/ablation_wordlength.dir/ablation_wordlength.cpp.o"
  "CMakeFiles/ablation_wordlength.dir/ablation_wordlength.cpp.o.d"
  "ablation_wordlength"
  "ablation_wordlength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wordlength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
