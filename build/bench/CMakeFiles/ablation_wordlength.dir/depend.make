# Empty dependencies file for ablation_wordlength.
# This may be replaced when dependencies are built.
