# Empty compiler generated dependencies file for table1_vgg_structure.
# This may be replaced when dependencies are built.
