file(REMOVE_RECURSE
  "CMakeFiles/table1_vgg_structure.dir/table1_vgg_structure.cpp.o"
  "CMakeFiles/table1_vgg_structure.dir/table1_vgg_structure.cpp.o.d"
  "table1_vgg_structure"
  "table1_vgg_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_vgg_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
