file(REMOVE_RECURSE
  "CMakeFiles/ablation_corners.dir/ablation_corners.cpp.o"
  "CMakeFiles/ablation_corners.dir/ablation_corners.cpp.o.d"
  "ablation_corners"
  "ablation_corners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
