file(REMOVE_RECURSE
  "CMakeFiles/fig1_fefet_characteristics.dir/fig1_fefet_characteristics.cpp.o"
  "CMakeFiles/fig1_fefet_characteristics.dir/fig1_fefet_characteristics.cpp.o.d"
  "fig1_fefet_characteristics"
  "fig1_fefet_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_fefet_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
