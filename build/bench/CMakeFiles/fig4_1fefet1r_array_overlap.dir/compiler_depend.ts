# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_1fefet1r_array_overlap.
