file(REMOVE_RECURSE
  "CMakeFiles/fig4_1fefet1r_array_overlap.dir/fig4_1fefet1r_array_overlap.cpp.o"
  "CMakeFiles/fig4_1fefet1r_array_overlap.dir/fig4_1fefet1r_array_overlap.cpp.o.d"
  "fig4_1fefet1r_array_overlap"
  "fig4_1fefet1r_array_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_1fefet1r_array_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
