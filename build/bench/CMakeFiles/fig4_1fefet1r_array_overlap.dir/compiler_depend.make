# Empty compiler generated dependencies file for fig4_1fefet1r_array_overlap.
# This may be replaced when dependencies are built.
