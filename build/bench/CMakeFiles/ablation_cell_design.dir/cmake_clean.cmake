file(REMOVE_RECURSE
  "CMakeFiles/ablation_cell_design.dir/ablation_cell_design.cpp.o"
  "CMakeFiles/ablation_cell_design.dir/ablation_cell_design.cpp.o.d"
  "ablation_cell_design"
  "ablation_cell_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cell_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
