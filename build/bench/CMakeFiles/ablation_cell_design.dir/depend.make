# Empty dependencies file for ablation_cell_design.
# This may be replaced when dependencies are built.
