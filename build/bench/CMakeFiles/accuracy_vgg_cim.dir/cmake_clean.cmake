file(REMOVE_RECURSE
  "CMakeFiles/accuracy_vgg_cim.dir/accuracy_vgg_cim.cpp.o"
  "CMakeFiles/accuracy_vgg_cim.dir/accuracy_vgg_cim.cpp.o.d"
  "accuracy_vgg_cim"
  "accuracy_vgg_cim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_vgg_cim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
