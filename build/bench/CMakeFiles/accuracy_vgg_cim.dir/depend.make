# Empty dependencies file for accuracy_vgg_cim.
# This may be replaced when dependencies are built.
