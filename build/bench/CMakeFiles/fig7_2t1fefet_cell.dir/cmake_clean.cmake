file(REMOVE_RECURSE
  "CMakeFiles/fig7_2t1fefet_cell.dir/fig7_2t1fefet_cell.cpp.o"
  "CMakeFiles/fig7_2t1fefet_cell.dir/fig7_2t1fefet_cell.cpp.o.d"
  "fig7_2t1fefet_cell"
  "fig7_2t1fefet_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_2t1fefet_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
