# Empty compiler generated dependencies file for fig7_2t1fefet_cell.
# This may be replaced when dependencies are built.
