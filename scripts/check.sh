#!/usr/bin/env bash
# One-shot verification gate: configure, build, run the full test suite,
# the verification layer, and the tracked solver benchmark with schema
# validation. This is the tier-1 entry point — if this script exits 0 the
# tree is good.
#
# Usage: scripts/check.sh [BUILD_DIR]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

step() { printf '\n== %s ==\n' "$*"; }

step "configure (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S . >/dev/null

step "build (-j${JOBS})"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

step "full test suite"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

step "verification layer (ctest -L verify)"
ctest --test-dir "${BUILD_DIR}" -L verify --output-on-failure -j "${JOBS}"

step "static netlist analysis (sfc_lint over examples/*.cir, text + SARIF)"
# Every shipped example must be fully clean — including the semantic
# interval passes (subthreshold-window, vth-temp-drift, cim-array-shape,
# adc-range): exit 0 means zero findings of any severity. Each deck's
# SARIF log must also satisfy the pinned schema/key-set contract.
for deck in examples/*.cir; do
  "${BUILD_DIR}/tools/sfc_lint" "${deck}"
  "${BUILD_DIR}/tools/sfc_lint" "${deck}" --sarif > "${BUILD_DIR}/lint_example.sarif"
  "${BUILD_DIR}/tools/verify_runner" check-sarif "${BUILD_DIR}/lint_example.sarif" \
    --keys tests/goldens/sarif_keys.json
done
# The acceptance demos must keep failing: a clean exit here means the
# linter lost its teeth. The subthreshold-window deck reads with a 1.6 V
# wordline — statically provable to turn on an erased cell at 85 degC.
for bad in floating-node:'I1 0 x 1u\nC1 x 0 1p\n.end' \
           vsource-loop:'V1 a 0 1\nV2 a 0 2\nR1 a 0 1k\n.end' \
           subthreshold-window:'VG g 0 1.6\nVD d 0 0.05\nZ1 d g 0 state=0\n.end'; do
  rule="${bad%%:*}"
  printf '%b\n' "${bad#*:}" > "${BUILD_DIR}/lint_demo.cir"
  # sfc_lint exits 3 here by design; capture instead of piping so pipefail
  # does not eat the expected nonzero status.
  out="$("${BUILD_DIR}/tools/sfc_lint" "${BUILD_DIR}/lint_demo.cir")" \
    && { echo "sfc_lint passed the ${rule} demo deck (expected exit 3)" >&2
         exit 1; }
  if grep -q "\[${rule}\]" <<<"${out}"; then
    echo "sfc_lint flags the ${rule} demo deck (exit 3, as expected)"
  else
    echo "sfc_lint FAILED to flag the ${rule} demo deck" >&2
    exit 1
  fi
done

step "observability layer (ctest -L trace)"
ctest --test-dir "${BUILD_DIR}" -L trace --output-on-failure -j "${JOBS}"

step "golden / oracle / fuzz summary (verify_runner)"
"${BUILD_DIR}/tools/verify_runner" golden
"${BUILD_DIR}/tools/verify_runner" oracle
"${BUILD_DIR}/tools/verify_runner" fuzz --count 200 --dump "${BUILD_DIR}"

step "solver benchmark smoke + JSON schema validation (traced)"
"${BUILD_DIR}/bench/perf_simulator" --smoke \
  --json "${BUILD_DIR}/BENCH_solver.json" \
  --trace "${BUILD_DIR}/trace_smoke.json" \
  --metrics "${BUILD_DIR}/metrics_smoke.json"
"${BUILD_DIR}/tools/verify_runner" check-bench "${BUILD_DIR}/BENCH_solver.json" \
  --keys tests/goldens/bench_solver_keys.json
# Key-set stability gate: the deterministic counter/histogram names a smoke
# run registers must match the reviewed golden — silent instrumentation
# drift in the solver hot path fails the tree.
"${BUILD_DIR}/tools/verify_runner" check-metrics "${BUILD_DIR}/metrics_smoke.json" \
  --golden tests/goldens/metrics_keys.json

step "SFC_TRACE=OFF build (zero-instrumentation flavour stays green)"
NOTRACE_DIR="${BUILD_DIR}-notrace"
cmake -B "${NOTRACE_DIR}" -S . -DSFC_TRACE=OFF \
  -DSFC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${NOTRACE_DIR}" -j "${JOBS}" \
  --target perf_simulator verify_runner test_trace test_exec
ctest --test-dir "${NOTRACE_DIR}" -L "trace|exec" --output-on-failure -j "${JOBS}"
# The disabled flavour still emits schema-3 BENCH JSON (counters present,
# zero) and must pass the same schema + key-set validation.
"${NOTRACE_DIR}/bench/perf_simulator" --smoke \
  --json "${NOTRACE_DIR}/BENCH_solver.json"
"${NOTRACE_DIR}/tools/verify_runner" check-bench "${NOTRACE_DIR}/BENCH_solver.json" \
  --keys tests/goldens/bench_solver_keys.json

step "UBSan pass (ctest -L \"spice|verify|lint|trace\" under -fsanitize=undefined)"
# -L is an AND filter when repeated; the regex is the union of the labels.
UBSAN_DIR="${BUILD_DIR}-ubsan"
cmake -B "${UBSAN_DIR}" -S . -DSFC_SANITIZE=undefined \
  -DSFC_BUILD_BENCH=OFF -DSFC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${UBSAN_DIR}" -j "${JOBS}"
ctest --test-dir "${UBSAN_DIR}" -L "spice|verify|lint|trace" \
  --output-on-failure -j "${JOBS}"
# The interval-oracle fuzz campaign under UBSan: the outward-rounding
# interval arithmetic and the fixpoint engine must be UB-free on 200
# generated decks, with zero solver escapes from the static bounds.
"${UBSAN_DIR}/tools/verify_runner" fuzz --count 200 --dump "${UBSAN_DIR}"

step "clang-tidy (skipped automatically when the binary is absent)"
scripts/tidy.sh "${BUILD_DIR}"

step "all checks passed"
