#!/usr/bin/env bash
# One-shot verification gate: configure, build, run the full test suite,
# the verification layer, and the tracked solver benchmark with schema
# validation. This is the tier-1 entry point — if this script exits 0 the
# tree is good.
#
# Usage: scripts/check.sh [BUILD_DIR]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

step() { printf '\n== %s ==\n' "$*"; }

step "configure (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S . >/dev/null

step "build (-j${JOBS})"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

step "full test suite"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

step "verification layer (ctest -L verify)"
ctest --test-dir "${BUILD_DIR}" -L verify --output-on-failure -j "${JOBS}"

step "golden / oracle / fuzz summary (verify_runner)"
"${BUILD_DIR}/tools/verify_runner" golden
"${BUILD_DIR}/tools/verify_runner" oracle
"${BUILD_DIR}/tools/verify_runner" fuzz --count 200 --dump "${BUILD_DIR}"

step "solver benchmark smoke + JSON schema validation"
"${BUILD_DIR}/bench/perf_simulator" --smoke --json "${BUILD_DIR}/BENCH_solver.json"
"${BUILD_DIR}/tools/verify_runner" check-bench "${BUILD_DIR}/BENCH_solver.json"

step "all checks passed"
