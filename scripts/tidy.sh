#!/usr/bin/env bash
# clang-tidy gate over src/spice, src/lint and tools/ using the repo-root
# .clang-tidy profile. The container used for tier-1 CI ships gcc only, so
# the script degrades to a no-op (exit 0 with a notice) when clang-tidy is
# not on PATH — the gate is advisory where the tool exists, never a hard
# dependency.
#
# Usage: scripts/tidy.sh [BUILD_DIR]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy.sh: clang-tidy not found on PATH; skipping (gcc-only container)"
  exit 0
fi

# clang-tidy needs a compilation database; reconfigure in place if the
# existing build tree was generated without one.
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t sources < <(ls src/spice/*.cpp src/lint/*.cpp tools/*.cpp)
echo "tidy.sh: linting ${#sources[@]} translation units"
clang-tidy -p "${BUILD_DIR}" --quiet "${sources[@]}"
echo "tidy.sh: clean"
